#!/usr/bin/env python
"""Generate ``docs/cli.md`` from the live argparse tree.

The CLI reference is *derived*, never hand-written: this script walks the
parser that :func:`repro.core.cli.build_parser` actually builds — every
subcommand, nested subcommand, flag, default and help string — and renders
it as markdown.  CI runs ``--check`` so the checked-in file can never drift
from the real interface: adding a flag without regenerating the docs fails
the build.

    python scripts/gen_cli_docs.py            # rewrite docs/cli.md
    python scripts/gen_cli_docs.py --check    # exit 1 if docs/cli.md is stale
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

# Usage strings wrap at the terminal width; pin it so the generated file is
# identical no matter where the script runs.
os.environ["COLUMNS"] = "80"

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.cli import build_parser  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(__file__), os.pardir, "docs", "cli.md"
)

HEADER = """\
# CLI reference — `python -m repro`

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with:  python scripts/gen_cli_docs.py
     CI runs `python scripts/gen_cli_docs.py --check` and fails when this
     file is stale. -->
"""


def _escape(text: str) -> str:
    # Python 3.10's BooleanOptionalAction appends "(default: %(default)s)"
    # to help strings; later versions do not.  Strip it so the generated
    # file is identical on every supported interpreter (the table has its
    # own default column anyway).
    text = text.replace("(default: %(default)s)", "").strip()
    return text.replace("|", "\\|").replace("\n", " ")


def _value_placeholder(action: argparse.Action) -> str:
    """The argument placeholder an option takes, or '' for pure flags."""
    if action.nargs == 0 or isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        return ""
    if isinstance(action, argparse.BooleanOptionalAction):
        return ""
    metavar = action.metavar
    if metavar is None:
        metavar = (action.dest or "value").upper()
    return f" {metavar}"


def _default_text(action: argparse.Action) -> str:
    if isinstance(action, argparse._HelpAction):
        return "-"
    if action.required:
        return "required"
    if action.default is None or action.default == "" or action.default == []:
        return "-"
    if isinstance(action.default, bool):
        return "on" if action.default else "off"
    return f"`{action.default}`"


def _options_table(parser: argparse.ArgumentParser) -> List[str]:
    rows: List[str] = []
    for action in parser._actions:
        if isinstance(action, (argparse._SubParsersAction, argparse._HelpAction)):
            continue
        if action.option_strings:
            name = ", ".join(
                f"`{opt}{_value_placeholder(action)}`"
                for opt in action.option_strings
            )
        else:
            name = f"`{action.dest}`"
        rows.append(
            f"| {name} | {_default_text(action)} | "
            f"{_escape(action.help or '')} |"
        )
    if not rows:
        return []
    return [
        "| option | default | description |",
        "| --- | --- | --- |",
        *rows,
    ]


def _subparsers_action(
    parser: argparse.ArgumentParser,
) -> argparse._SubParsersAction | None:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    return None


def _render(parser: argparse.ArgumentParser, title: str, depth: int) -> List[str]:
    lines: List[str] = ["#" * depth + f" `{title}`", ""]
    description = (parser.description or "").strip()
    if description and depth > 2:
        lines += [description, ""]
    usage = parser.format_usage().removeprefix("usage: ").rstrip()
    lines += ["```", usage, "```", ""]
    table = _options_table(parser)
    if table:
        lines += table + [""]
    subparsers = _subparsers_action(parser)
    if subparsers is not None:
        seen = set()
        for name, sub in subparsers.choices.items():
            if id(sub) in seen:  # aliases share one parser; document once
                continue
            seen.add(id(sub))
            lines += _render(sub, f"{title} {name}", depth + 1)
    return lines


def generate() -> str:
    parser = build_parser()
    lines = [HEADER]
    description = (parser.description or "").strip()
    if description:
        lines += [description, ""]
    lines += [
        "Installed as the `repro` console script; `python -m repro` is "
        "equivalent.",
        "",
    ]
    lines += _render(parser, "python -m repro", 2)[2:]  # skip duplicate title
    return "\n".join(lines).rstrip() + "\n"


def main() -> int:
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the markdown"
    )
    cli.add_argument(
        "--check",
        action="store_true",
        help="verify the checked-in file matches; write nothing",
    )
    args = cli.parse_args()

    text = generate()
    output = os.path.normpath(args.output)
    if args.check:
        try:
            with open(output) as handle:
                current = handle.read()
        except FileNotFoundError:
            print(f"error: {output} is missing; run python scripts/gen_cli_docs.py")
            return 1
        if current != text:
            print(
                f"error: {output} is stale with respect to the argparse tree; "
                "run python scripts/gen_cli_docs.py and commit the result"
            )
            return 1
        print(f"{output} is up to date")
        return 0

    os.makedirs(os.path.dirname(output), exist_ok=True)
    with open(output, "w") as handle:
        handle.write(text)
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
