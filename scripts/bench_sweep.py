#!/usr/bin/env python
"""Benchmark the sweep runner and record the result in BENCH_sweep.json.

Times a small REF+DVA sweep (two programs, three latencies) three ways —
cold serial (trace building included), warm serial (traces cached) and
multiprocess — so successive PRs can track the performance trajectory of
the experiment layer.  Run from the repository root:

    python scripts/bench_sweep.py [--scale S] [--jobs N] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Runner, SweepSpec  # noqa: E402


def _time(label: str, fn) -> dict:
    start = time.perf_counter()
    sweep = fn()
    elapsed = time.perf_counter() - start
    cells = len(sweep)
    return {
        "label": label,
        "seconds": round(elapsed, 4),
        "cells": cells,
        "cells_per_second": round(cells / elapsed, 2) if elapsed else None,
        "total_cycles_simulated": sum(result.total_cycles for result in sweep),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args()

    spec = SweepSpec(
        programs=("dyfesm", "trfd"),
        latencies=(1, 50, 100),
        architectures=("ref", "dva"),
        scale=args.scale,
    )

    serial_runner = Runner(jobs=1)
    runs = [
        _time("serial_cold", lambda: serial_runner.run(spec)),
        _time("serial_warm_trace_cache", lambda: serial_runner.run(spec)),
        _time(f"multiprocess_jobs{args.jobs}", lambda: Runner(jobs=args.jobs).run(spec)),
    ]

    report = {
        "benchmark": "core sweep runner (REF+DVA, 2 programs x 3 latencies)",
        "spec": {
            "programs": list(spec.programs),
            "latencies": list(spec.latencies),
            "architectures": list(spec.architectures),
            "scale": spec.scale,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    for run in runs:
        print(f"{run['label']:28s} {run['seconds']:8.4f}s  "
              f"{run['cells_per_second']} cells/s")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
