#!/usr/bin/env python
"""Benchmark the sweep runner and record the result in BENCH_sweep.json.

Two benchmarks, one report:

1. **Runner modes** — times a small REF+DVA sweep (two programs, three
   latencies) on a serial runner (``jobs=1``) and on a ``jobs=N`` runner.
   Each runner executes the sweep ``--repeats`` times and both the cold
   first run and the best (minimum) of the remaining runs are recorded —
   the same methodology for both modes, so the comparison is between like
   and like: cold-vs-cold shows startup cost (trace building, and for the
   parallel runner its persistent worker pool), warm-vs-warm shows the
   steady-state throughput a long-lived runner delivers.

2. **Result store** — times the paper's full six-program sweep twice
   through a fresh :class:`~repro.store.ResultStore` in a temporary
   directory: once cold (every cell simulated and persisted) and once warm
   (every cell answered by the store).  The ``store`` section of the report
   records both timings and the warm-over-cold speedup — the headline
   number for resumable sweeps.

3. **Distributed sweep** (``cluster2``) — the same grid through
   :class:`~repro.cluster.ClusterCoordinator` with two spawned
   ``repro worker`` *processes* coordinating through a fresh store: cold
   (manifest published, cells claimed/simulated by the workers, result
   assembled) and warm (everything answered by the store; no workers
   spawned at all).  Per-worker claim/steal/complete counters land in the
   report, so the split of work between the two processes is visible.

4. **Timing cores** (``event_core``) — the latency-100 cells of the same
   grid on the tick core and on the event-driven skip-ahead core
   (``--core event``), serial and pooled, cold and warm, with the
   tick-vs-event cells/sec ratio and a ``cycles_identical`` flag.  The
   tick core is one-pass and latency-independent, so these rows record
   the honest overhead of the event control flow, not a speedup.

Before overwriting the output file, the previous report's serial
cold/warm cells-per-second are captured into a ``baseline_comparison``
section (with the speedups of this run over them), so the committed
``BENCH_sweep.json`` always documents the improvement over the last
committed state — e.g. the columnar trace pipeline against the
record-at-a-time seed it replaced.

**Worker counts are reported honestly, up front.**  ``jobs`` is a ceiling:
the runner caps pool workers to the CPUs actually available, so on a
one-CPU machine the ``jobs2`` rows measure the runner's in-process
batch-throughput mode rather than a worker pool, and the ``cluster2``
worker processes time-slice one core — coordination overhead, not
parallel speedup.  The report's top-level ``workers`` section records the
CPU count, the requested and *effective* worker count per mode, and a
``cpu_capped`` flag; the console output prints the same before any
throughput number, so the parallel rows are never mistaken for something
they are not.  Run from the repository root:

    python scripts/bench_sweep.py [--scale S] [--jobs N] [--repeats R] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import ResultStore, RunConfig, Runner, SweepSpec  # noqa: E402
from repro.workloads.perfect_club import program_names  # noqa: E402


def _timed_run(
    label: str, runner: Runner, spec: SweepSpec, config: "RunConfig | None" = None
) -> dict:
    start = time.perf_counter()
    sweep = runner.run(spec, config=config)
    elapsed = time.perf_counter() - start
    cells = len(sweep)
    return {
        "label": label,
        "seconds": round(elapsed, 4),
        "cells": cells,
        "cells_per_second": round(cells / elapsed, 2) if elapsed else None,
        "total_cycles_simulated": sum(result.total_cycles for result in sweep),
    }


def _time_runners(
    runners: "dict[str, Runner]",
    spec: SweepSpec,
    repeats: int,
    config: "RunConfig | None" = None,
) -> list:
    """Time ``repeats`` executions per runner, interleaved round-robin.

    Interleaving makes every mode sample the same background-noise
    environment, which matters on shared machines.  Per mode, the first
    (cold) run and the best of the remaining (warm) runs are reported.
    """
    rows = []
    best: "dict[str, dict]" = {}
    for index in range(repeats):
        for label, runner in runners.items():
            row = _timed_run(
                label if index == 0 else f"{label}_warm", runner, spec, config
            )
            if index == 0:
                rows.append(row)
            elif label not in best or row["seconds"] < best[label]["seconds"]:
                best[label] = row
    for label in runners:
        if label in best:
            rows.append(best[label])
    return rows


def _bench_store(scale: float) -> dict:
    """Cold-vs-warm timings of the full six-program sweep through the store.

    A fresh temporary store isolates the measurement from any real cache the
    machine carries, and fresh runners for each pass make the warm run model
    the real resumable-sweep scenario: a brand-new process that finds every
    cell already persisted (it never even builds traces).
    """
    spec = SweepSpec.from_strings(
        programs=",".join(program_names()),
        latencies="1,50,100",
        architectures="ref,dva",
        scale=scale,
    )
    root = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        with Runner(jobs=1, store=ResultStore(root)) as runner:
            cold = _timed_run("store_cold", runner, spec)
        with Runner(jobs=1, store=ResultStore(root)) as runner:
            warm_sweep_start = time.perf_counter()
            warm_sweep = runner.run(spec)
            warm_elapsed = time.perf_counter() - warm_sweep_start
    finally:
        shutil.rmtree(root, ignore_errors=True)
    warm = {
        "label": "store_warm",
        "seconds": round(warm_elapsed, 4),
        "cells": len(warm_sweep),
        "cells_per_second": round(len(warm_sweep) / warm_elapsed, 2)
        if warm_elapsed else None,
        "cached_cells": warm_sweep.cached_count,
        "simulated_cells": warm_sweep.simulated_count,
    }
    return {
        "benchmark": "result store (6 programs x 3 latencies x ref,dva)",
        "runs": [cold, warm],
        "warm_speedup_over_cold": round(cold["seconds"] / warm["seconds"], 1)
        if warm["seconds"] else None,
    }


def _bench_cluster(spec: SweepSpec, workers: int) -> dict:
    """Cold-vs-warm timings of the grid through two real worker processes.

    Cold publishes a manifest and lets ``workers`` spawned ``repro worker``
    subprocesses claim and simulate every cell; warm re-runs the same spec
    against the now-full store — the coordinator answers everything itself
    and spawns nothing.  Per-worker counters come from the claim files'
    bookkeeping, so the report shows how the work actually split.
    """
    from repro.cluster import ClusterCoordinator, cluster_status

    root = tempfile.mkdtemp(prefix="repro-cluster-bench-")
    label = f"cluster{workers}"
    try:
        store = ResultStore(root)
        coordinator = ClusterCoordinator(store)
        start = time.perf_counter()
        cold_sweep = coordinator.run_distributed(spec, workers=workers)
        cold_elapsed = time.perf_counter() - start
        status = cluster_status(store)
        worker_rows = [
            {
                "worker": row["worker"],
                "claimed": row["claimed"],
                "stolen": row["stolen"],
                "completed": row["completed"],
            }
            for sweep in status["sweeps"]
            for row in sweep["workers"]
        ]
        start = time.perf_counter()
        warm_sweep = coordinator.run_distributed(spec, workers=workers)
        warm_elapsed = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)
    cold = {
        "label": label,
        "seconds": round(cold_elapsed, 4),
        "cells": len(cold_sweep),
        "cells_per_second": round(len(cold_sweep) / cold_elapsed, 2)
        if cold_elapsed else None,
        "simulated_cells": cold_sweep.simulated_count,
    }
    warm = {
        "label": f"{label}_warm",
        "seconds": round(warm_elapsed, 4),
        "cells": len(warm_sweep),
        "cells_per_second": round(len(warm_sweep) / warm_elapsed, 2)
        if warm_elapsed else None,
        "cached_cells": warm_sweep.cached_count,
        "simulated_cells": warm_sweep.simulated_count,
        "worker_processes_spawned": 0,
    }
    return {
        "benchmark": f"distributed sweep via repro.cluster "
        f"({workers} spawned worker processes)",
        "worker_processes_spawned": workers,
        "runs": [cold, warm],
        "per_worker": worker_rows,
    }


def _bench_event_core(scale: float, jobs: int, repeats: int) -> dict:
    """Tick-vs-event throughput on the latency-100 cells, cold and warm.

    Both cores run the same high-latency grid (no store, so every cell is
    simulated) serially and with a ``jobs``-worker pool, interleaved like
    the runner-mode benchmark.  The numbers are reported honestly: the tick
    core is one-pass timestamp arithmetic and already latency-independent,
    so the event core's wakeup heap is pure overhead on this workload —
    parity, not speedup, is the expectation.  Its value is the differential
    harness and the per-resource skip-span attribution, not throughput.
    """
    spec = SweepSpec.from_strings(
        programs="dyfesm,trfd",
        latencies="100",
        architectures="ref,dva",
        scale=scale,
    )
    rows = []
    for core in ("tick", "event"):
        with Runner(jobs=1) as serial, Runner(jobs=jobs) as parallel:
            rows.extend(
                _time_runners(
                    {f"{core}_serial": serial, f"{core}_jobs{jobs}": parallel},
                    spec,
                    repeats,
                    config=RunConfig(core=core),
                )
            )
    by_label = {row["label"]: row for row in rows}
    tick = by_label.get("tick_serial_warm", by_label["tick_serial"])
    event = by_label.get("event_serial_warm", by_label["event_serial"])
    identical = (
        tick["total_cycles_simulated"] == event["total_cycles_simulated"]
    )
    return {
        "benchmark": "tick vs event timing core (latency-100 cells, storeless)",
        "note": (
            "tick is one-pass and latency-independent, so the event core's "
            "wakeup heap cannot beat it on wall clock; the ratio below "
            "records the honest overhead of the event control flow"
        ),
        "runs": rows,
        "cycles_identical": identical,
        "event_over_tick_serial_warm": round(
            event["cells_per_second"] / tick["cells_per_second"], 2
        )
        if tick["cells_per_second"] and event["cells_per_second"]
        else None,
    }


def _previous_baseline(path: str) -> "dict | None":
    """Serial cold/warm numbers of the report currently at ``path``, if any."""
    try:
        with open(path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return None
    runs = {run["label"]: run for run in previous.get("runs", ())}
    cold = runs.get("serial")
    warm = runs.get("serial_warm", cold)
    if cold is None:
        return None
    return {
        "serial_cold_cells_per_second": cold.get("cells_per_second"),
        "serial_warm_cells_per_second": (warm or cold).get("cells_per_second"),
    }


def _baseline_comparison(previous: "dict | None", runs: list) -> "dict | None":
    """Cold/warm speedups of this run's serial mode over the previous report."""
    if previous is None:
        return None
    by_label = {run["label"]: run for run in runs}
    cold = by_label.get("serial")
    warm = by_label.get("serial_warm", cold)
    comparison = {"previous": previous}
    previous_cold = previous.get("serial_cold_cells_per_second")
    previous_warm = previous.get("serial_warm_cells_per_second")
    if cold and previous_cold:
        comparison["serial_cold_speedup"] = round(
            cold["cells_per_second"] / previous_cold, 2
        )
    if warm and previous_warm:
        comparison["serial_warm_speedup"] = round(
            warm["cells_per_second"] / previous_warm, 2
        )
    return comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per mode; the first is cold, the best of "
                             "the rest is reported as warm")
    parser.add_argument("--output", default="BENCH_sweep.json")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=V1,V2,...",
                        help="extra machine-parameter sweep axis (repeatable), "
                             "e.g. --axis lanes=1,2 to benchmark a wider grid")
    parser.add_argument("--cluster-workers", type=int, default=2,
                        help="worker processes for the distributed-sweep "
                             "benchmark (default: 2)")
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.jobs < 2:
        parser.error("--jobs must be at least 2 (the serial mode is always timed)")

    previous = _previous_baseline(args.output)

    spec = SweepSpec.from_strings(
        programs="dyfesm,trfd",
        latencies="1,50,100",
        architectures="ref,dva",
        scale=args.scale,
        axes=tuple(args.axis),
    )

    parallel_label = f"jobs{args.jobs}"
    with Runner(jobs=1) as serial_runner, Runner(jobs=args.jobs) as parallel_runner:
        runs = _time_runners(
            {"serial": serial_runner, parallel_label: parallel_runner},
            spec,
            args.repeats,
        )
        effective_workers = {
            "serial": serial_runner.effective_jobs,
            parallel_label: parallel_runner.effective_jobs,
        }

    by_label = {run["label"]: run for run in runs}
    serial_best = by_label.get("serial_warm", by_label["serial"])
    parallel_best = by_label.get(f"{parallel_label}_warm", by_label[parallel_label])
    cpus = os.cpu_count()
    cpu_capped = effective_workers[parallel_label] < args.jobs
    workers_section = {
        "cpus": cpus,
        "requested_jobs": args.jobs,
        "effective_workers": effective_workers,
        "cluster_worker_processes": args.cluster_workers,
        "cpu_capped": cpu_capped,
        "honesty": (
            f"jobs{args.jobs} ran with {effective_workers[parallel_label]} "
            f"effective pool worker(s) on {cpus} CPU(s); "
            + (
                "parallel rows measure in-process batch mode / coordination "
                "overhead, NOT multi-core speedup"
                if cpu_capped or (cpus or 1) < 2
                else "parallel rows reflect real multi-core execution"
            )
        ),
    }
    report = {
        "benchmark": "core sweep runner (REF+DVA, 2 programs x 3 latencies)",
        "spec": {
            "programs": list(spec.programs),
            "latencies": list(spec.latencies),
            "architectures": list(spec.architectures),
            "scale": spec.scale,
            "axes": [[name, list(values)] for name, values in spec.axes],
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workers": workers_section,
        "cpus": cpus,
        "requested_jobs": args.jobs,
        "effective_workers": effective_workers,
        "repeats_per_mode": args.repeats,
        "runs": runs,
        "jobs_speedup_over_serial": round(
            serial_best["seconds"] / parallel_best["seconds"], 4
        ),
        "store": _bench_store(args.scale),
        "cluster": _bench_cluster(spec, args.cluster_workers),
        "event_core": _bench_event_core(args.scale, args.jobs, args.repeats),
    }
    comparison = _baseline_comparison(previous, runs)
    if comparison is not None:
        report["baseline_comparison"] = comparison
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    # Worker honesty comes first, before any throughput number.
    print(workers_section["honesty"])
    print(
        f"cluster{args.cluster_workers}: {args.cluster_workers} separate "
        f"worker processes coordinating through the store on {cpus} CPU(s)"
    )
    print()
    all_runs = (
        runs
        + report["store"]["runs"]
        + report["cluster"]["runs"]
        + report["event_core"]["runs"]
    )
    for run in all_runs:
        print(f"{run['label']:28s} {run['seconds']:8.4f}s  "
              f"{run['cells_per_second']} cells/s")
    print(f"jobs speedup over serial (warm best): "
          f"{report['jobs_speedup_over_serial']}x")
    print(f"store warm speedup over cold: "
          f"{report['store']['warm_speedup_over_cold']}x")
    split = ", ".join(
        f"{row['worker']}: {row['completed']}"
        for row in report["cluster"]["per_worker"]
    )
    print(f"cluster work split (cells completed): {split}")
    print(
        f"event core vs tick (serial warm, latency 100): "
        f"{report['event_core']['event_over_tick_serial_warm']}x, "
        f"cycles identical: {report['event_core']['cycles_identical']}"
    )
    if comparison is not None:
        print(
            f"serial speedup over previous report: "
            f"cold {comparison.get('serial_cold_speedup', '?')}x, "
            f"warm {comparison.get('serial_warm_speedup', '?')}x"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
