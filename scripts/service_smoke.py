#!/usr/bin/env python
"""Smoke-test a live ``repro serve`` instance end to end (run in CI).

Starts the server as a subprocess on an ephemeral port with a temporary
store, then drives the whole service loop with stdlib ``urllib``:

1. ``GET /v1/healthz`` answers ok;
2. a small cold sweep runs to completion (every cell simulated);
3. the *identical* sweep re-submitted is answered entirely from the store
   (0 simulated, no batch dispatched) — the warm path, over the wire;
4. ``GET /v1/stats`` reflects both: store entries plus service counters.

Exits non-zero (with the failing detail on stderr) on any violation, so a
CI step is just ``python scripts/service_smoke.py``.
"""

import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

SWEEP = {
    "programs": "dyfesm,trfd",
    "latencies": [1, 50],
    "architectures": "ref,dva",
    "scale": 0.2,
}
CELLS = 2 * 2 * 2


def api(base, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data)
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def poll(base, sweep_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while True:
        payload = api(base, f"/v1/sweeps/{sweep_id}")
        if payload["state"] != "running":
            return payload
        if time.monotonic() > deadline:
            raise SystemExit(f"sweep {sweep_id} never settled: {payload}")
        time.sleep(0.25)


def check(condition, what, context):
    if not condition:
        raise SystemExit(f"FAIL: {what}\n  context: {json.dumps(context, indent=2)}")
    print(f"ok: {what}")


def main():
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as store_dir:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--store-dir", store_dir, "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # The server announces its bound address on the first line.
            line = server.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            if not match:
                raise SystemExit(f"no address announcement, got: {line!r}")
            base = f"http://{match.group(1)}:{match.group(2)}"
            print(f"server up at {base} (store: {store_dir})")

            health = api(base, "/v1/healthz")
            check(health["status"] == "ok", "healthz answers ok", health)

            submitted = api(base, "/v1/sweeps", SWEEP)
            cold = poll(base, submitted["sweep"])
            check(cold["state"] == "done", "cold sweep completes", cold)
            check(
                cold["done"] == CELLS and cold["simulated"] == CELLS,
                f"cold sweep simulates all {CELLS} cells",
                {k: cold[k] for k in ("done", "total", "cached", "simulated")},
            )

            resubmitted = api(base, "/v1/sweeps", SWEEP)
            warm = poll(base, resubmitted["sweep"])
            check(
                warm["state"] == "done" and warm["simulated"] == 0
                and warm["cached"] == CELLS,
                "identical re-submission is all cache hits, 0 simulated",
                {k: warm[k] for k in ("done", "total", "cached", "simulated")},
            )
            cycles = lambda payload: sorted(  # noqa: E731
                result["total_cycles"] for result in payload["results"]
            )
            check(cycles(warm) == cycles(cold), "warm results equal cold results", {})

            stats = api(base, "/v1/stats")
            scheduler = stats["service"]["scheduler"]
            check(stats["entry_count"] == CELLS, f"store holds {CELLS} entries", stats)
            check(
                scheduler["simulated"] == CELLS and scheduler["store_hits"] >= CELLS,
                "scheduler counters agree: one simulation per cell, warm from store",
                scheduler,
            )
            print("service smoke: all checks passed")
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()


if __name__ == "__main__":
    main()
