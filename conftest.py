"""Pytest bootstrap: make ``src/`` importable without an installed package.

The library is normally installed with ``pip install -e .`` (metadata lives
in ``pyproject.toml``).  Inserting ``src/`` here as a fallback lets
``pytest`` run straight from a fresh checkout — including fully offline
machines where an editable install is not possible at all.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
