"""Pytest bootstrap: make ``src/`` importable without an installed package.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on fully offline machines without the ``wheel``
package).  Inserting ``src/`` here as a fallback lets ``pytest`` run straight
from a fresh checkout as well.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
