"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``.  This file only exists so
that ``pip install -e .`` keeps working on environments whose ``setuptools``
lacks PEP 660 editable-wheel support (for example fully offline machines
without the ``wheel`` package).
"""

from setuptools import setup

setup()
